// Side-by-side demonstration of the paper's core claim: basic Paxos is a
// concurrency *prevention* mechanism (one commit per log position, no
// matter what the transactions touch), while Paxos-CP achieves true
// concurrency control (only genuine read-write conflicts abort).
//
// Two clients repeatedly update *disjoint* attributes of the same entity
// group; a third reads an attribute the first one writes, creating real
// conflicts only for it.
//
//   ./build/examples/contention_demo
#include <cstdio>

#include "core/cluster.h"
#include "sim/coro.h"
#include "txn/client.h"

using namespace paxoscp;

namespace {

struct Tally {
  int committed = 0;
  int aborted = 0;
};

sim::Task DisjointWriter(core::Cluster* cluster,
                         txn::TransactionClient* client, std::string attr,
                         Tally* tally) {
  sim::Simulator* sim = cluster->simulator();
  for (int i = 0; i < 20; ++i) {
    co_await sim::SleepFor(sim, 150 * kMillisecond);
    if (!(co_await client->Begin("g")).ok()) continue;
    // Read our own attribute (no cross-client read-write conflict).
    (void)co_await client->Read("g", "r", attr);
    (void)client->Write("g", "r", attr, std::to_string(i));
    txn::CommitResult commit = co_await client->Commit("g");
    (commit.committed ? tally->committed : tally->aborted)++;
  }
}

sim::Task ConflictingReader(core::Cluster* cluster,
                            txn::TransactionClient* client, Tally* tally) {
  sim::Simulator* sim = cluster->simulator();
  for (int i = 0; i < 20; ++i) {
    co_await sim::SleepFor(sim, 150 * kMillisecond);
    if (!(co_await client->Begin("g")).ok()) continue;
    // Reads "a" (written by client 1) then writes "c": a true read-write
    // conflict whenever client 1 wins an intervening log position.
    (void)co_await client->Read("g", "r", "a");
    (void)client->Write("g", "r", "c", std::to_string(i));
    txn::CommitResult commit = co_await client->Commit("g");
    (commit.committed ? tally->committed : tally->aborted)++;
  }
}

void RunOnce(txn::Protocol protocol) {
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVV");
  config.seed = 31;
  core::Cluster cluster(config);
  (void)cluster.LoadInitialRow("g", "r",
                               {{"a", "0"}, {"b", "0"}, {"c", "0"}});
  txn::ClientOptions options;
  options.protocol = protocol;

  Tally writer_a, writer_b, reader;
  DisjointWriter(&cluster, cluster.CreateClient(0, options), "a", &writer_a);
  DisjointWriter(&cluster, cluster.CreateClient(1, options), "b", &writer_b);
  ConflictingReader(&cluster, cluster.CreateClient(2, options), &reader);
  cluster.RunToCompletion();

  std::printf("%-9s | writer(a): %2d/%2d  writer(b): %2d/%2d  "
              "conflicting reader: %2d/%2d\n",
              txn::ProtocolName(protocol), writer_a.committed,
              writer_a.committed + writer_a.aborted, writer_b.committed,
              writer_b.committed + writer_b.aborted, reader.committed,
              reader.committed + reader.aborted);
}

}  // namespace

int main() {
  std::printf("two disjoint writers + one conflicting reader, 20 txns each "
              "(committed/attempted):\n\n");
  RunOnce(txn::Protocol::kBasicPaxos);
  RunOnce(txn::Protocol::kPaxosCP);
  std::printf(
      "\nUnder basic Paxos the disjoint writers abort each other (pure log\n"
      "position contention); under Paxos-CP they both commit via promotion\n"
      "or combination, and only genuinely conflicting transactions abort.\n");
  return 0;
}
