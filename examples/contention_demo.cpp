// Side-by-side demonstration of the paper's core claim: basic Paxos is a
// concurrency *prevention* mechanism (one commit per log position, no
// matter what the transactions touch), while Paxos-CP achieves true
// concurrency control (only genuine read-write conflicts abort).
//
// Two clients repeatedly update *disjoint* attributes of the same entity
// group; a third reads an attribute the first one writes, creating real
// conflicts only for it. No retries here — the point is the raw
// per-attempt outcome taxonomy.
//
//   ./build/examples/contention_demo
#include <cstdio>

#include "core/db.h"
#include "sim/coro.h"

using namespace paxoscp;

namespace {

constexpr char kGroup[] = "g";
constexpr char kRow[] = "r";

struct Tally {
  int committed = 0;
  int aborted = 0;
  int total() const { return committed + aborted; }
};

sim::Task DisjointWriter(Db* db, txn::Session* session, std::string attr,
                         Tally* tally) {
  sim::Simulator* sim = db->simulator();
  for (int i = 0; i < 20; ++i) {
    co_await sim::SleepFor(sim, 150 * kMillisecond);
    txn::Txn txn = co_await session->Begin(kGroup);
    if (!txn.active()) continue;
    // Read our own attribute (no cross-client read-write conflict).
    (void)co_await txn.Read(kRow, attr);
    (void)txn.Write(kRow, attr, std::to_string(i));
    txn::CommitResult commit = co_await txn.Commit();
    (commit.committed ? tally->committed : tally->aborted)++;
  }
}

sim::Task ConflictingReader(Db* db, txn::Session* session, Tally* tally) {
  sim::Simulator* sim = db->simulator();
  for (int i = 0; i < 20; ++i) {
    co_await sim::SleepFor(sim, 150 * kMillisecond);
    txn::Txn txn = co_await session->Begin(kGroup);
    if (!txn.active()) continue;
    // Reads "a" (written by client 1) then writes "c": a true read-write
    // conflict whenever client 1 wins an intervening log position.
    (void)co_await txn.Read(kRow, "a");
    (void)txn.Write(kRow, "c", std::to_string(i));
    txn::CommitResult commit = co_await txn.Commit();
    (commit.committed ? tally->committed : tally->aborted)++;
  }
}

struct RunResult {
  Tally writer_a, writer_b, reader;
  int writers_committed() const {
    return writer_a.committed + writer_b.committed;
  }
};

RunResult RunOnce(txn::Protocol protocol) {
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVV");
  config.seed = 31;
  Db db(config);
  (void)db.Load(kGroup, kRow, {{"a", "0"}, {"b", "0"}, {"c", "0"}});
  txn::ClientOptions options;
  options.protocol = protocol;

  RunResult result;
  txn::Session s0 = db.Session(0, options);
  txn::Session s1 = db.Session(1, options);
  txn::Session s2 = db.Session(2, options);
  DisjointWriter(&db, &s0, "a", &result.writer_a);
  DisjointWriter(&db, &s1, "b", &result.writer_b);
  ConflictingReader(&db, &s2, &result.reader);
  db.Run();

  std::printf("%-9s | writer(a): %2d/%2d  writer(b): %2d/%2d  "
              "conflicting reader: %2d/%2d\n",
              txn::ProtocolName(protocol), result.writer_a.committed,
              result.writer_a.total(), result.writer_b.committed,
              result.writer_b.total(), result.reader.committed,
              result.reader.total());
  return result;
}

}  // namespace

int main() {
  std::printf("two disjoint writers + one conflicting reader, 20 txns each "
              "(committed/attempted):\n\n");
  RunResult basic = RunOnce(txn::Protocol::kBasicPaxos);
  RunResult cp = RunOnce(txn::Protocol::kPaxosCP);
  std::printf(
      "\nUnder basic Paxos the disjoint writers abort each other (pure log\n"
      "position contention); under Paxos-CP they both commit via promotion\n"
      "or combination, and only genuinely conflicting transactions abort.\n");

  // The demo is deterministic; fail loudly if the claimed shape breaks
  // (this binary runs as a ctest smoke test).
  if (cp.writers_committed() <= basic.writers_committed()) {
    std::printf("UNEXPECTED: CP disjoint writers committed %d <= basic %d\n",
                cp.writers_committed(), basic.writers_committed());
    return 1;
  }
  if (basic.writer_a.aborted + basic.writer_b.aborted == 0) {
    std::printf("UNEXPECTED: basic Paxos aborted no disjoint writer\n");
    return 1;
  }
  return 0;
}
