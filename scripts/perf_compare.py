#!/usr/bin/env python3
"""Compare two paxoscp-perf-v1 snapshots and flag regressions.

Every bench binary emits a perf snapshot with --json (see
bench/experiment_common.h, PerfReporter):

    {
      "schema": "paxoscp-perf-v1",
      "binary": "fig4_replicas",
      "benchmarks": {
        "fig4/paxos-cp/VVV": {"ns_per_op": 123.4, "items_per_s": 8100.0}
      }
    }

This script diffs the ns_per_op of every benchmark present in both files
and prints a table of deltas. A benchmark regresses when its ns_per_op
grows by more than the threshold (default 10%); per-bench overrides take
precedence, matched by exact name first and then by longest prefix, so

    perf_compare.py old.json new.json \
        --threshold 10 --threshold-for recovery/=25 \
        --threshold-for fig4/paxos-cp/VVV=5

gives every recovery/* cell 25% headroom and one fig4 cell a tight 5%.

Exit status is 0 unless --fail-on-regression is passed AND at least one
regression was found (CI runs it without the flag first, as a
non-blocking trend report). Structural mismatches (missing file, wrong
schema, malformed JSON) always exit 2 — they mean the comparison itself
is broken, not that performance moved.
"""

import argparse
import json
import sys


def die(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_snapshot(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read perf snapshot '{path}': {e}")
    if doc.get("schema") != "paxoscp-perf-v1":
        die(
            f"'{path}' has schema {doc.get('schema')!r}, "
            "expected 'paxoscp-perf-v1'"
        )
    benches = doc.get("benchmarks")
    if not isinstance(benches, dict):
        die(f"'{path}' has no 'benchmarks' object")
    return doc


def parse_overrides(pairs):
    overrides = {}
    for pair in pairs or []:
        name, sep, pct = pair.rpartition("=")
        if not sep or not name:
            die(f"--threshold-for wants NAME=PCT, got '{pair}'")
        try:
            overrides[name] = float(pct)
        except ValueError:
            die(f"threshold '{pct}' for '{name}' is not a number")
    return overrides


def threshold_for(name, default, overrides):
    if name in overrides:
        return overrides[name]
    # Longest-prefix match lets one override cover a family of cells
    # ("recovery/" covers recovery/daemon_on and recovery/daemon_off).
    best = None
    for prefix, pct in overrides.items():
        if name.startswith(prefix) and (best is None or len(prefix) > best[0]):
            best = (len(prefix), pct)
    return best[1] if best else default


def main():
    parser = argparse.ArgumentParser(
        description="Diff two paxoscp-perf-v1 snapshots (ns_per_op)."
    )
    parser.add_argument("baseline", help="older snapshot (the reference)")
    parser.add_argument("current", help="newer snapshot (the candidate)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="default regression threshold in percent (default: 10)",
    )
    parser.add_argument(
        "--threshold-for",
        action="append",
        metavar="NAME=PCT",
        help="per-benchmark threshold; NAME may be a prefix (repeatable)",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any benchmark exceeds its threshold",
    )
    args = parser.parse_args()

    base = load_snapshot(args.baseline)
    cur = load_snapshot(args.current)
    overrides = parse_overrides(args.threshold_for)

    base_benches = base["benchmarks"]
    cur_benches = cur["benchmarks"]
    names = sorted(set(base_benches) | set(cur_benches))

    rows = []
    regressions = []
    for name in names:
        b = base_benches.get(name)
        c = cur_benches.get(name)
        if b is None:
            rows.append((name, "-", fmt_ns(c.get("ns_per_op")), "added", ""))
            continue
        if c is None:
            rows.append((name, fmt_ns(b.get("ns_per_op")), "-", "removed", ""))
            continue
        b_ns, c_ns = b.get("ns_per_op"), c.get("ns_per_op")
        if not isinstance(b_ns, (int, float)) or not isinstance(
            c_ns, (int, float)
        ) or b_ns <= 0:
            rows.append((name, str(b_ns), str(c_ns), "unreadable", ""))
            continue
        delta = (c_ns - b_ns) / b_ns * 100.0
        limit = threshold_for(name, args.threshold, overrides)
        verdict = "ok"
        if delta > limit:
            verdict = "REGRESSION"
            regressions.append((name, delta, limit))
        elif delta < -limit:
            verdict = "improved"
        rows.append(
            (name, fmt_ns(b_ns), fmt_ns(c_ns), f"{delta:+.1f}%",
             f"{verdict} (limit {limit:g}%)")
        )

    headers = ("benchmark", "base ns/op", "cur ns/op", "delta", "verdict")
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    print(
        f"perf compare: {base.get('binary', '?')} "
        f"({args.baseline} -> {args.current})"
    )
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(col.ljust(w) for col, w in zip(row, widths)))

    if regressions:
        print()
        for name, delta, limit in regressions:
            print(
                f"regression: {name} slowed by {delta:+.1f}% "
                f"(threshold {limit:g}%)"
            )
        if args.fail_on_regression:
            return 1
    return 0


def fmt_ns(v):
    return f"{v:,.1f}" if isinstance(v, (int, float)) else str(v)


if __name__ == "__main__":
    sys.exit(main())
