#!/usr/bin/env bash
# clang-tidy driver for the paxoscp source tree (design note D11).
#
# Runs the curated .clang-tidy check set over every first-party
# translation unit in src/, using the compile_commands.json exported by
# CMake (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default in the root
# CMakeLists.txt). Findings are errors: WarningsAsErrors covers the whole
# check set, so a non-zero exit means the tree is not tidy-clean.
#
# Usage:
#   scripts/run_tidy.sh [build_dir]     (default: build)
#
# Environment:
#   CLANG_TIDY   explicit clang-tidy binary to use
#   TIDY_JOBS    parallelism (default: nproc)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

# Find a clang-tidy: explicit override first, then unversioned, then the
# newest versioned binary the distro ships.
find_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    echo "$CLANG_TIDY"
    return
  fi
  if command -v clang-tidy >/dev/null 2>&1; then
    echo clang-tidy
    return
  fi
  for ver in 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-$ver" >/dev/null 2>&1; then
      echo "clang-tidy-$ver"
      return
    fi
  done
  echo ""
}

tidy="$(find_tidy)"
if [[ -z "$tidy" ]]; then
  echo "run_tidy.sh: no clang-tidy binary found (set CLANG_TIDY or install" \
       "clang-tidy); skipping is NOT clean — install it" >&2
  exit 2
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy.sh: $build_dir/compile_commands.json missing — configuring" >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    >/dev/null
fi

jobs="${TIDY_JOBS:-$(nproc)}"
echo "run_tidy.sh: $("$tidy" --version | head -n1) over src/ ($jobs jobs)"

# Every first-party TU; headers are covered through HeaderFilterRegex.
mapfile -t sources < <(cd "$repo_root" && ls src/*/*.cc | sort)

fail=0
printf '%s\n' "${sources[@]}" | xargs -P "$jobs" -I{} \
  "$tidy" -p "$build_dir" --quiet "$repo_root/{}" || fail=1

if [[ "$fail" -ne 0 ]]; then
  echo "run_tidy.sh: clang-tidy findings above — fix them or add a" \
       "justified NOLINT (see .clang-tidy header)" >&2
  exit 1
fi
echo "run_tidy.sh: clean (${#sources[@]} translation units)"
