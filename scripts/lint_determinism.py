#!/usr/bin/env python3
"""Determinism / coroutine-lifetime linter for the paxoscp source tree.

Every replay, chaos and availability claim in this repo rests on two
invariants the generic tools (compiler warnings, clang-tidy, sanitizers)
cannot check, because they are *policies*, not language rules:

 1. Determinism: all time comes from sim::Simulator (virtual microseconds),
    all randomness from the seeded common/random Rng. Wall-clock reads,
    libc rand(), std::random_device etc. would make seeded replay lie.
 2. Replay-order stability: iterating an unordered_{map,set} visits
    elements in a hash-seed/layout-dependent order. Any behaviour derived
    from such an iteration (message order, retry order, log append order)
    breaks bit-identical replay across toolchains and ASLR runs.
 3. Coroutine lifetime: a lambda that captures by reference and is handed
    to the event queue (Simulator::ScheduleAfter/ScheduleAt, Future
    callbacks, detached Task legs) outlives the enclosing scope; the
    capture dangles unless ownership is explicitly reasoned about. Same
    for `co_await`ing a Coro<T> and silently dropping the T: results in
    this codebase carry commit decisions and statuses, and dropping one
    has hidden a real bug before (decided-but-unapplied, PR 3).

Rules (ids are what LINT:allow annotations name):

  wall-clock            banned wall-clock/time sources in src/
  unseeded-random       banned unseeded randomness sources in src/
  unordered-iter        iteration over an unordered_* container in src/
  pointer-keyed         std::map/std::set keyed by a raw pointer: the
                        comparator is the pointer value, so iteration
                        order tracks allocation addresses (heap layout,
                        ASLR), not seeded state
  ref-capture-schedule  reference-capturing lambda handed to the event
                        queue or a detached coroutine leg
  discarded-coro        bare `co_await Fn(...);` statement discarding a
                        non-void Coro<T> result

Suppressions: a finding is allowed only with an inline justification —

    // LINT:allow(<rule>): <non-empty reason>

on the flagged line or the line directly above it. A reason-less allow is
itself an error; suppressions without justification are how invariants rot.

Usage:
  lint_determinism.py [paths...]         lint files/dirs (default: src/)
  lint_determinism.py --self-test DIR    run the fixture suite under DIR
                                         (must_fail/ + must_pass/)
  lint_determinism.py --list-rules       print rule ids and summaries

Exit codes: 0 clean, 1 findings (or fixture mismatches), 2 usage/IO error.
"""

import argparse
import os
import re
import sys

RULES = {
    "wall-clock": "wall-clock/time source outside the simulator",
    "unseeded-random": "randomness source outside seeded common/random",
    "unordered-iter": "iteration over an unordered_* container",
    "pointer-keyed": "std::map/std::set keyed by a raw pointer",
    "ref-capture-schedule":
        "reference capture handed to the event queue / detached leg",
    "discarded-coro": "co_await discards a non-void Coro<T> result",
}

# Files allowed to implement the sanctioned sources themselves.
EXEMPT_SUFFIXES = (
    os.path.join("common", "random.h"),
    os.path.join("common", "random.cc"),
)

ALLOW_RE = re.compile(r"//\s*LINT:allow\(([a-z-]+)\)\s*:?\s*(.*)")

# --------------------------------------------------------------------------
# Lexical preprocessing: blank out comments and string/char literals while
# preserving line structure, so rule regexes never fire inside either.
# --------------------------------------------------------------------------


def strip_comments_and_strings(text):
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":  # block comment
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == 'R' and nxt == '"':  # raw string literal R"delim(...)delim"
            m = re.match(r'R"([^(]{0,16})\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            end = text.find(")" + m.group(1) + '"', i + m.end())
            end = n if end == -1 else end + len(m.group(1)) + 2
            for j in range(i, min(end, n)):
                out.append("\n" if text[j] == "\n" else " ")
            i = end
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            out.append(" ")
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class File:
    """One source file: raw lines (for annotations), stripped lines and the
    stripped text as a single string (for cross-line rules)."""

    def __init__(self, path, text):
        self.path = path
        self.raw_lines = text.splitlines()
        self.code = strip_comments_and_strings(text)
        self.code_lines = self.code.splitlines()
        # line number (1-based) -> list of (rule, reason). An annotation
        # covers its own line and — skipping comment-only continuation
        # lines (multi-line reasons) — the next line that holds code.
        self.allows = {}
        for idx, line in enumerate(self.raw_lines, start=1):
            m = ALLOW_RE.search(line)
            if m:
                self.allows.setdefault(idx, []).append(
                    (m.group(1), m.group(2).strip()))

    def allow_scope(self, allow_line):
        scope = {allow_line}
        for idx in range(allow_line + 1, len(self.code_lines) + 1):
            scope.add(idx)
            if self.code_lines[idx - 1].strip():
                break
        return scope

    def line_of_offset(self, offset):
        return self.code.count("\n", 0, offset) + 1


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


# --------------------------------------------------------------------------
# Rule implementations. Each yields (line, rule, message).
# --------------------------------------------------------------------------

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime()"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0|&)"), "time()"),
    (re.compile(r"\bstd::time\b"), "std::time()"),
    (re.compile(r"\blocaltime\b"), "localtime()"),
    (re.compile(r"\bgmtime\b"), "gmtime()"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\bthis_thread::sleep_for\b"), "std::this_thread::sleep_for"),
    (re.compile(r"\busleep\s*\("), "usleep()"),
    (re.compile(r"\bnanosleep\s*\("), "nanosleep()"),
]

RANDOM_PATTERNS = [
    (re.compile(r"\brand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\bminstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\branlux(?:24|48)\b"), "std::ranlux"),
]


def check_simple_patterns(f, patterns, rule, hint):
    for lineno, line in enumerate(f.code_lines, start=1):
        for pat, label in patterns:
            if pat.search(line):
                yield (lineno, rule, "%s: %s" % (label, hint))


UNORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:multi)?(?:map|set)\s*<")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def unordered_variable_names(code):
    """Names of variables/members declared with an unordered_* type.

    Heuristic: after each `unordered_xxx<`, skip the balanced template
    argument list, then take the next identifier as the declarator name.
    Misses aliases/typedefs; catches the way containers are actually
    declared in this codebase and the fixtures.
    """
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        i, depth = m.end(), 1
        n = len(code)
        while i < n and depth > 0:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        rest = code[i:i + 200]
        # Skip refs/pointers/whitespace, then grab the declarator.
        rest = rest.lstrip(" \t\n&*")
        ident = IDENT_RE.match(rest)
        if ident and ident.group(0) not in ("const", "override", "final"):
            names.add(ident.group(0))
    return names


def check_unordered_iter(f):
    names = unordered_variable_names(f.code)
    if not names:
        return
    alt = "|".join(re.escape(x) for x in sorted(names))
    iter_res = [
        re.compile(r"for\s*\([^;)]*:\s*(?:\*?\s*)(%s)\s*\)" % alt),
        re.compile(r"\b(%s)\s*(?:\.|->)\s*c?r?begin\s*\(" % alt),
        re.compile(r"\b(?:std\s*::\s*)?c?begin\s*\(\s*(%s)\s*\)" % alt),
    ]
    for lineno, line in enumerate(f.code_lines, start=1):
        for pat in iter_res:
            m = pat.search(line)
            if m:
                yield (lineno, "unordered-iter",
                       "iterating unordered container '%s': order is "
                       "hash-layout-dependent and breaks seeded replay; use "
                       "std::map / sorted snapshot, or justify" % m.group(1))


ORDERED_ASSOC_RE = re.compile(r"\b(?:std\s*::\s*)?(?:multi)?(?:map|set)\s*<")


def check_pointer_keyed(f):
    """std::map<T*, ...> / std::set<T*>: ordered by address, not by state.

    The \\b in ORDERED_ASSOC_RE cannot match after '_', so unordered_map /
    unordered_set (point lookups are fine, iteration is unordered-iter's
    business) and names like flat_map never reach the key check.
    """
    for m in ORDERED_ASSOC_RE.finditer(f.code):
        # First template argument: scan the balanced argument list up to
        # the first top-level comma (map) or the closing '>' (set).
        i, depth, n = m.end(), 1, len(f.code)
        arg_start = i
        while i < n and depth > 0:
            c = f.code[i]
            if c in "<(":
                depth += 1
            elif c in ">)":
                depth -= 1
            elif c == "," and depth == 1:
                break
            i += 1
        key = f.code[arg_start:i - (0 if i < n and f.code[i] == "," else 1)]
        key = " ".join(key.split())
        if key.endswith("*"):
            yield (f.line_of_offset(m.start()), "pointer-keyed",
                   "container keyed by pointer '%s': comparison is the "
                   "address, so iteration order tracks heap layout/ASLR "
                   "and breaks seeded replay; key by a stable id (the "
                   "store instance_id pattern) or justify" % key)


TASK_DECL_RE = re.compile(r"\b(?:sim\s*::\s*)?Task\s+([A-Za-z_]\w*)\s*\(")
SCHEDULE_CALL_RE = re.compile(r"\b(ScheduleAfter|ScheduleAt|OnReady)\s*\(")
LAMBDA_RE = re.compile(r"\[([^\[\]]*)\]\s*(?:\([^()]*\))?\s*"
                       r"(?:mutable\s*)?(?:noexcept\s*)?(?:->[^{]+)?\{")
REF_CAPTURE_RE = re.compile(r"(?:^|[,\[])\s*&\s*(?:[A-Za-z_]\w*)?\s*(?:[,\]]|$)")


def balanced_call_extent(code, open_paren):
    """Returns the offset one past the matching ')' for the '(' at
    open_paren, or len(code) if unbalanced."""
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def spawn_call_sites(f, task_fns):
    """Yields (offset, callee) for every event-queue or detached-leg call."""
    for m in SCHEDULE_CALL_RE.finditer(f.code):
        yield m.start(), m.group(1)
    if task_fns:
        pat = re.compile(r"\b(%s)\s*\(" %
                         "|".join(re.escape(x) for x in sorted(task_fns)))
        for m in pat.finditer(f.code):
            # Skip the declaration/definition itself (preceded by 'Task',
            # possibly with a ClassName:: qualifier in between).
            prefix = f.code[max(0, m.start() - 64):m.start()]
            if re.search(r"\bTask\s+(?:[A-Za-z_]\w*\s*::\s*)?$", prefix):
                continue
            yield m.start(), m.group(1)


def check_ref_capture(f, task_fns):
    for offset, callee in spawn_call_sites(f, task_fns):
        open_paren = f.code.find("(", offset)
        if open_paren == -1:
            continue
        args = f.code[open_paren:balanced_call_extent(f.code, open_paren)]
        for lm in LAMBDA_RE.finditer(args):
            captures = lm.group(1)
            if REF_CAPTURE_RE.search(captures):
                line = f.line_of_offset(offset)
                yield (line, "ref-capture-schedule",
                       "lambda captures by reference ([%s]) but is handed "
                       "to %s(): it runs from the event queue after the "
                       "enclosing scope may be gone; capture by value / "
                       "shared_ptr, or annotate the ownership" %
                       (captures.strip(), callee))


CORO_DECL_RE = re.compile(r"\bCoro\s*<")


def coro_value_fn_names(files):
    """Function names declared as returning Coro<T> with T != void, across
    all linted files (declarations live in headers, calls in .cc)."""
    names = set()
    for f in files:
        for m in CORO_DECL_RE.finditer(f.code):
            i, depth = m.end(), 1
            while i < len(f.code) and depth > 0:
                if f.code[i] == "<":
                    depth += 1
                elif f.code[i] == ">":
                    depth -= 1
                i += 1
            inner = f.code[m.end():i - 1].strip()
            if inner == "void":
                continue
            rest = f.code[i:i + 200]
            dm = re.match(r"\s*(?:[A-Za-z_]\w*\s*::\s*)?([A-Za-z_]\w*)\s*\(",
                          rest)
            if dm:
                names.add(dm.group(1))
    return names


def check_discarded_coro(f, coro_fns):
    if not coro_fns:
        return
    pat = re.compile(
        r"co_await\s+(?:[A-Za-z_]\w*(?:\s*(?:\.|->|::)\s*[A-Za-z_]\w*)*"
        r"(?:\.|->|::)\s*)?(%s)\s*\(" %
        "|".join(re.escape(x) for x in sorted(coro_fns)))
    for m in pat.finditer(f.code):
        # Only bare statements: the previous non-whitespace char must end a
        # statement/block/condition. Assignments, returns, argument
        # positions etc. consume the value.
        before = f.code[:m.start()].rstrip()
        if before and before[-1] not in ";{})":
            continue
        # ... and the call's result must not be consumed after the ')'.
        end = balanced_call_extent(f.code, f.code.find("(", m.end(1)))
        after = f.code[end:end + 2].lstrip()
        if not after.startswith(";"):
            continue
        yield (f.line_of_offset(m.start()), "discarded-coro",
               "co_await %s(...) discards a non-void Coro result; results "
               "carry statuses/decisions — consume it or annotate why the "
               "value is provably redundant here" % m.group(1))


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def is_exempt(path):
    norm = os.path.normpath(path)
    return any(norm.endswith(sfx) for sfx in EXEMPT_SUFFIXES)


def collect_files(paths):
    out = []
    for p in paths:
        if os.path.isdir(p):
            for root, _, names in sorted(os.walk(p)):
                for name in sorted(names):
                    if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                        out.append(os.path.join(root, name))
        elif os.path.isfile(p):
            out.append(p)
        else:
            raise OSError("no such file or directory: %s" % p)
    return out


def lint_files(paths):
    """Returns (findings, errors). Errors are annotation-misuse strings."""
    files = []
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            files.append(File(path, fh.read()))

    task_fns = set()
    for f in files:
        for m in TASK_DECL_RE.finditer(f.code):
            task_fns.add(m.group(1))
    coro_fns = coro_value_fn_names(files)

    findings, errors, used_allows = [], [], set()
    for f in files:
        if is_exempt(f.path):
            continue
        raw = []
        raw.extend(check_simple_patterns(
            f, WALL_CLOCK_PATTERNS, "wall-clock",
            "all time must come from sim::Simulator::Now() / virtual delays"))
        raw.extend(check_simple_patterns(
            f, RANDOM_PATTERNS, "unseeded-random",
            "all randomness must come from the seeded common/random Rng"))
        raw.extend(check_unordered_iter(f))
        raw.extend(check_pointer_keyed(f))
        raw.extend(check_ref_capture(f, task_fns))
        raw.extend(check_discarded_coro(f, coro_fns))

        scopes = {line: f.allow_scope(line) for line in f.allows}
        for line, rule, message in raw:
            allowed = False
            for allow_line, entries in f.allows.items():
                if line not in scopes[allow_line]:
                    continue
                for arule, reason in entries:
                    if arule != rule:
                        continue
                    if not reason:
                        errors.append(
                            "%s:%d: LINT:allow(%s) without a reason — a "
                            "suppression must say why it is safe" %
                            (f.path, allow_line, rule))
                    allowed = True
                    used_allows.add((f.path, allow_line, rule))
            if not allowed:
                findings.append(Finding(f.path, line, rule, message))

        for line, entries in f.allows.items():
            for rule, _ in entries:
                if rule not in RULES:
                    errors.append("%s:%d: LINT:allow(%s) names an unknown "
                                  "rule" % (f.path, line, rule))
                elif (f.path, line, rule) not in used_allows:
                    errors.append("%s:%d: stale LINT:allow(%s) — nothing in "
                                  "its scope triggers that rule" %
                                  (f.path, line, rule))
    return findings, errors


EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([a-z-]+)")


def self_test(fixtures_dir):
    must_fail = os.path.join(fixtures_dir, "must_fail")
    must_pass = os.path.join(fixtures_dir, "must_pass")
    if not os.path.isdir(must_fail) or not os.path.isdir(must_pass):
        print("self-test: %s must contain must_fail/ and must_pass/" %
              fixtures_dir, file=sys.stderr)
        return 2

    failures = 0
    for path in collect_files([must_fail]):
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        expected = set(EXPECT_RE.findall(text))
        if not expected:
            print("FAIL %s: must_fail fixture lacks an // EXPECT: <rule> "
                  "marker" % path)
            failures += 1
            continue
        findings, errors = lint_files([path])
        got = {fd.rule for fd in findings}
        # Annotation misuse (reason-less or stale allows) surfaces as the
        # pseudo-rule `annotation-error` so fixtures can pin it too.
        if errors:
            got.add("annotation-error")
        if got == expected:
            print("ok   %s (%s)" % (path, ", ".join(sorted(expected))))
        else:
            print("FAIL %s: expected rules %s, got %s%s" %
                  (path, sorted(expected), sorted(got),
                   ("; errors: " + "; ".join(errors)) if errors else ""))
            for fd in findings:
                print("       " + str(fd))
            failures += 1

    for path in collect_files([must_pass]):
        findings, errors = lint_files([path])
        if not findings and not errors:
            print("ok   %s (clean)" % path)
        else:
            print("FAIL %s: expected clean, got:" % path)
            for fd in findings:
                print("       " + str(fd))
            for err in errors:
                print("       " + err)
            failures += 1

    print("self-test: %s" % ("FAILED (%d fixture(s))" % failures
                             if failures else "all fixtures behave"))
    return 1 if failures else 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="paxoscp determinism / coroutine-lifetime linter")
    parser.add_argument("paths", nargs="*", help="files or directories "
                        "(default: src/ next to this script's parent)")
    parser.add_argument("--self-test", metavar="DIR",
                        help="run the fixture suite under DIR")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-22s %s" % (rule, RULES[rule]))
        return 0

    if args.self_test:
        return self_test(args.self_test)

    paths = args.paths
    if not paths:
        repo_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        paths = [os.path.join(repo_root, "src")]

    try:
        files = collect_files(paths)
    except OSError as err:
        print("lint_determinism: %s" % err, file=sys.stderr)
        return 2

    findings, errors = lint_files(files)
    for fd in findings:
        print(fd)
    for err in errors:
        print(err)
    if findings or errors:
        print("lint_determinism: %d finding(s), %d annotation error(s) "
              "across %d file(s)" % (len(findings), len(errors), len(files)))
        return 1
    print("lint_determinism: clean (%d file(s))" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
