#!/usr/bin/env python3
"""Tie-shuffle invariance check for the fig benches (design note D12).

Runs a PerfReporter-driven bench binary once per shuffle seed (seed 0 is
the production FIFO tie-break) and byte-compares the `--json` snapshots
modulo the perf fields: `ns_per_op` and `items_per_s` are wall-clock
measurements and legitimately differ run to run, everything else — the
benchmark name set and each entry's deterministic "shape" object
(attempted/committed/aborted/cross counters, checker verdict) — must be
identical under every same-virtual-time permutation. A divergence means
the figure's headline shape depends on simulator insertion order, i.e. a
schedule-order race reached the results layer.

    shuffle_invariance.py ./build/bench/fig_availability \
        --seeds 0,101,202,303 --workdir /tmp/shuffle_fig

The binary must also exit 0 under every seed (the fig binaries gate their
own headline shape), so a shuffle that breaks e.g. the availability claim
fails here even if the snapshot happens to match.

Exit status: 0 invariant, 1 divergence or bench failure, 2 structural
(missing binary, unreadable snapshot) — mirroring perf_compare.py.
"""

import argparse
import difflib
import json
import os
import subprocess
import sys


def die(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


PERF_FIELDS = ("ns_per_op", "items_per_s")


def canonical_shape(path):
    """Loads a paxoscp-perf-v1 snapshot and returns its canonical JSON text
    with the perf fields stripped."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read snapshot '{path}': {e}")
    if doc.get("schema") != "paxoscp-perf-v1":
        die(f"'{path}' has schema {doc.get('schema')!r}")
    benches = doc.get("benchmarks")
    if not isinstance(benches, dict):
        die(f"'{path}' has no 'benchmarks' object")
    for entry in benches.values():
        if isinstance(entry, dict):
            for field in PERF_FIELDS:
                entry.pop(field, None)
    return json.dumps(doc, indent=2, sort_keys=True)


def main():
    parser = argparse.ArgumentParser(
        description="Byte-compare a bench's --json shape across shuffle seeds."
    )
    parser.add_argument("binary", help="bench binary (takes --json/--shuffle-seed)")
    parser.add_argument(
        "--seeds",
        default="0,101,202,303",
        help="comma-separated shuffle seeds; the first is the baseline",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="directory for snapshots and logs (default: alongside ctest cwd)",
    )
    args = parser.parse_args()

    if not os.path.isfile(args.binary):
        die(f"bench binary '{args.binary}' does not exist")
    seeds = [int(s) for s in args.seeds.split(",") if s.strip() != ""]
    if len(seeds) < 2:
        die("need at least a baseline seed and one shuffle seed")

    name = os.path.basename(args.binary)
    workdir = args.workdir or f"shuffle_{name}"
    os.makedirs(workdir, exist_ok=True)

    shapes = {}
    failed = False
    for seed in seeds:
        snapshot = os.path.join(workdir, f"{name}_seed{seed}.json")
        log_path = os.path.join(workdir, f"{name}_seed{seed}.log")
        cmd = [args.binary, "--json", snapshot, f"--shuffle-seed={seed}"]
        with open(log_path, "w", encoding="utf-8") as log:
            proc = subprocess.run(cmd, stdout=log, stderr=subprocess.STDOUT)
        if proc.returncode != 0:
            print(
                f"FAIL: {name} --shuffle-seed={seed} exited "
                f"{proc.returncode} (its own shape gate tripped; see "
                f"{log_path})"
            )
            failed = True
            continue
        shapes[seed] = canonical_shape(snapshot)

    base_seed = seeds[0]
    if base_seed in shapes:
        for seed in seeds[1:]:
            if seed not in shapes:
                continue
            if shapes[seed] == shapes[base_seed]:
                print(f"seed {seed}: shape identical to seed {base_seed}")
                continue
            failed = True
            print(f"DIVERGENCE: seed {seed} shape differs from seed {base_seed}:")
            diff = difflib.unified_diff(
                shapes[base_seed].splitlines(keepends=True),
                shapes[seed].splitlines(keepends=True),
                fromfile=f"seed {base_seed}",
                tofile=f"seed {seed}",
            )
            sys.stdout.writelines(diff)

    if failed:
        print(f"\n{name}: tie-shuffle invariance FAILED (artifacts in {workdir})")
        return 1
    print(
        f"\n{name}: headline shape invariant across shuffle seeds "
        f"{', '.join(str(s) for s in seeds)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
